package main

import (
	"strings"
	"testing"
	"time"

	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
)

func TestBuildConfigDefaults(t *testing.T) {
	addr, cfg, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":7421" {
		t.Errorf("addr = %q", addr)
	}
	if cfg.Procs != 8 || cfg.Workers != 2 || cfg.Transport != "chan" {
		t.Errorf("engine defaults wrong: %+v", cfg)
	}
	if len(cfg.KeyTypes) != 0 {
		t.Errorf("keytypes should default empty (serve fills all three), got %v", cfg.KeyTypes)
	}
}

func TestBuildConfigFlags(t *testing.T) {
	addr, cfg, err := buildConfig([]string{
		"-addr", "127.0.0.1:9000", "-procs", "4", "-workers", "3",
		"-keytypes", "uint64,string", "-inflight", "3", "-tenant-inflight", "1",
		"-queue", "5", "-cache-mb", "8", "-job-timeout", "9s", "-max-keys", "1000",
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:9000" || cfg.Procs != 4 || cfg.Workers != 3 {
		t.Errorf("basic flags wrong: %q %+v", addr, cfg)
	}
	if len(cfg.KeyTypes) != 2 || cfg.KeyTypes[0] != dist.KeyUint64 || cfg.KeyTypes[1] != dist.KeyString {
		t.Errorf("keytypes wrong: %v", cfg.KeyTypes)
	}
	if cfg.MaxInflight != 3 || cfg.TenantInflight != 1 || cfg.QueueDepth != 5 {
		t.Errorf("admission flags wrong: %+v", cfg)
	}
	if cfg.CacheBytes != 8<<20 || cfg.JobTimeout != 9*time.Second || cfg.MaxKeys != 1000 {
		t.Errorf("cache/limit flags wrong: %+v", cfg)
	}
}

func TestBuildConfigResilienceFlags(t *testing.T) {
	defer failpoint.Reset()
	_, cfg, err := buildConfig([]string{
		"-retry-attempts", "5", "-breaker-threshold", "2",
		"-breaker-cooldown", "10s", "-fallback-keys", "-1",
		"-failpoints", "serve/cache-put:error:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RetryAttempts != 5 || cfg.BreakerThreshold != 2 || cfg.BreakerCooldown != 10*time.Second {
		t.Errorf("retry/breaker flags wrong: %+v", cfg)
	}
	if cfg.FallbackKeys != -1 {
		t.Errorf("fallback-keys = %d, want -1 (disabled)", cfg.FallbackKeys)
	}
	if !failpoint.Active() {
		t.Error("-failpoints spec did not arm the registry")
	}
}

func TestBuildConfigRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad keytype", []string{"-keytypes", "int128"}, "unknown key type"},
		{"bad overlap", []string{"-overlap", "maybe"}, "overlap"},
		{"bad localsort", []string{"-localsort", "bogo"}, "local sort"},
		{"bad failpoint spec", []string{"-failpoints", "core/exchange"}, "failpoint"},
		{"listen without tcp", []string{"-listen", "127.0.0.1:7401"}, "-transport tcp"},
		{"listen count mismatch", []string{"-transport", "tcp", "-procs", "2", "-keytypes", "uint64", "-listen", "a:1"}, "1 addresses for 2"},
		{"tcp addrs need one keytype", []string{"-transport", "tcp", "-procs", "1", "-listen", "a:1"}, "exactly one domain"},
		{"stray args", []string{"extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		_, _, err := buildConfig(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
