// Command pgxsort generates, sorts and verifies key files with the
// distributed sorting library.
//
// Usage:
//
//	pgxsort generate -kind right-skewed -n 1000000 -out keys.bin
//	pgxsort sort     -in keys.bin -out sorted.bin -procs 8 -workers 4
//	pgxsort verify   -in sorted.bin
//	pgxsort describe -in keys.bin
//
// Key files are little-endian uint64 arrays.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pgxsort"
	"pgxsort/internal/dist"
	tp "pgxsort/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "sort":
		err = cmdSort(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "describe", "info": // info is the historical name
		err = cmdDescribe(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgxsort:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pgxsort <generate|sort|verify|describe> [flags]
  generate -kind <uniform|normal|right-skewed|exponential|...> -n N [-seed S] [-domain D] -out FILE
  sort     -in FILE -out FILE [-procs P] [-workers W] [-transport chan|tcp] [-listen A1,..,AP] [-peers A1,..,AP] [-sample-factor F] [-no-investigator] [-localsort auto|comparison|radix] [-overlap auto|on|off]
  verify   -in FILE
  describe -in FILE`)
	os.Exit(2)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "uniform", "distribution kind")
	n := fs.Int("n", 1<<20, "number of keys")
	seed := fs.Uint64("seed", 1, "generator seed")
	domain := fs.Uint64("domain", 0, "value domain (0 = default)")
	out := fs.String("out", "", "output file")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("generate: -out required")
	}
	if *n < 0 {
		return fmt.Errorf("generate: -n must be >= 0, got %d", *n)
	}
	k, err := dist.ParseKind(*kind)
	if err != nil {
		return err
	}
	keys := make([]uint64, *n)
	dist.Gen{Kind: k, Seed: *seed, Domain: *domain}.Fill(keys)
	if err := writeKeys(*out, keys); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s keys to %s\n", *n, k, *out)
	return nil
}

func cmdSort(args []string) error {
	fs := flag.NewFlagSet("sort", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	out := fs.String("out", "", "output file")
	procs := fs.Int("procs", 8, "simulated processors")
	workers := fs.Int("workers", 2, "workers per processor")
	transport := fs.String("transport", "chan", "transport: chan or tcp")
	listen := fs.String("listen", "", "comma-separated per-node TCP listen addresses (tcp transport; empty = loopback ephemeral)")
	peers := fs.String("peers", "", "comma-separated per-node TCP dial addresses (tcp transport; empty = the bound listen addresses)")
	factor := fs.Float64("sample-factor", 1.0, "sample size factor (paper's X multiplier)")
	noInv := fs.Bool("no-investigator", false, "disable the duplicate-splitter investigator")
	localSort := fs.String("localsort", "auto", "local sort path: auto, comparison or radix")
	overlap := fs.String("overlap", "auto", "exchange–merge overlap: auto, on, or off (barriered ablation)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("sort: -in and -out required")
	}
	lsMode, err := pgxsort.ParseLocalSortMode(*localSort)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	mergeMode, err := pgxsort.ParseOverlapFlag(*overlap)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	tcpCfg, err := tcpConfig(*transport, *listen, *peers, *procs)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	keys, err := readKeys(*in)
	if err != nil {
		return err
	}
	sorted, report, err := pgxsort.Sort(keys, pgxsort.Options{
		Procs:               *procs,
		WorkersPerProc:      *workers,
		Transport:           *transport,
		TCP:                 tcpCfg,
		SampleFactor:        *factor,
		DisableInvestigator: *noInv,
		LocalSort:           lsMode,
		Merge:               mergeMode,
	})
	if err != nil {
		return err
	}
	if err := writeKeys(*out, sorted); err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Printf("wrote %d sorted keys to %s\n", len(sorted), *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("verify: -in required")
	}
	keys, err := readKeys(*in)
	if err != nil {
		return err
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return fmt.Errorf("NOT sorted: order violated at index %d (%d < %d)",
				i, keys[i], keys[i-1])
		}
	}
	fmt.Printf("%s: %d keys, sorted\n", *in, len(keys))
	return nil
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("describe: -in required")
	}
	keys, err := readKeys(*in)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		fmt.Printf("%s: empty\n", *in)
		return nil
	}
	minK, maxK := keys[0], keys[0]
	for _, k := range keys {
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	fmt.Printf("%s: %d keys, min %d, max %d, duplicate ratio %.3f\n",
		*in, len(keys), minK, maxK, dist.DuplicateRatio(keys))
	domain := maxK + 1
	if domain == 0 { // maxK is MaxUint64; keep the top key in range
		domain = math.MaxUint64
	}
	h := dist.NewHistogram(keys, domain, 16)
	fmt.Print(h.Render(48))
	return nil
}

// tcpConfig assembles the transport config from the -listen/-peers
// flags, validating them against the processor count.
func tcpConfig(transport, listen, peers string, procs int) (pgxsort.TransportConfig, error) {
	var cfg pgxsort.TransportConfig
	if listen == "" && peers == "" {
		return cfg, nil
	}
	if transport != pgxsort.TransportTCP {
		return cfg, fmt.Errorf("-listen/-peers require -transport tcp")
	}
	cfg.Listen = tp.SplitAddrs(listen)
	cfg.Peers = tp.SplitAddrs(peers)
	if len(cfg.Listen) > 0 && len(cfg.Listen) != procs {
		return cfg, fmt.Errorf("-listen names %d addresses for %d processors", len(cfg.Listen), procs)
	}
	if len(cfg.Peers) > 0 && len(cfg.Peers) != procs {
		return cfg, fmt.Errorf("-peers names %d addresses for %d processors", len(cfg.Peers), procs)
	}
	return cfg, nil
}

func writeKeys(path string, keys []uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readKeys(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size()%8 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 8", path, st.Size())
	}
	keys := make([]uint64, st.Size()/8)
	r := bufio.NewReaderSize(f, 1<<20)
	var buf [8]byte
	for i := range keys {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		keys[i] = binary.LittleEndian.Uint64(buf[:])
	}
	return keys, nil
}
