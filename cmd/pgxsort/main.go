// Command pgxsort generates, sorts and verifies key files with the
// distributed sorting library.
//
// Usage:
//
//	pgxsort generate -kind right-skewed -n 1000000 -out keys.bin
//	pgxsort sort     -in keys.bin -out sorted.bin -procs 8 -workers 4
//	pgxsort verify   -in sorted.bin
//	pgxsort describe -in keys.bin
//	pgxsort submit   -in keys.bin -out sorted.bin -server http://host:7421
//
// Every subcommand takes -keytype uint64|float64|string (default uint64).
// uint64 and float64 files are little-endian 8-byte arrays (float64 as
// IEEE-754 bits); string files are uint32-LE length-prefixed records.
// sort -recbytes N attaches an N-byte synthetic payload to every key and
// sorts through the record path, so payload movement shows in the report.
package main

import (
	"cmp"
	"flag"
	"fmt"
	"math"
	"os"

	"pgxsort"
	"pgxsort/internal/dist"
	tp "pgxsort/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "sort":
		err = cmdSort(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "describe", "info": // info is the historical name
		err = cmdDescribe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgxsort:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pgxsort <generate|sort|verify|describe|submit> [flags]
  generate -kind <uniform|normal|right-skewed|exponential|...> -n N [-seed S] [-domain D] [-keytype uint64|float64|string] [-prefix P] -out FILE
  sort     -in FILE -out FILE [-keytype T] [-recbytes N] [-procs P] [-workers W] [-transport chan|tcp] [-listen A1,..,AP] [-peers A1,..,AP] [-sample-factor F] [-no-investigator] [-localsort auto|comparison|radix] [-overlap auto|on|off]
  verify   -in FILE [-keytype T]
  describe -in FILE [-keytype T]
  submit   -in FILE [-out FILE] [-server URL] [-keytype T] [-tenant NAME] [-deadline D] [-topk K [-bottom]] [-rank KEY] [-no-cache]`)
	os.Exit(2)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "uniform", "distribution kind")
	n := fs.Int("n", 1<<20, "number of keys")
	seed := fs.Uint64("seed", 1, "generator seed")
	domain := fs.Uint64("domain", 0, "value domain (0 = default)")
	keytype := fs.String("keytype", "uint64", "key type: uint64, float64 or string")
	prefix := fs.String("prefix", "", "shared key prefix (string keytype only)")
	out := fs.String("out", "", "output file")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("generate: -out required")
	}
	if *n < 0 {
		return fmt.Errorf("generate: -n must be >= 0, got %d", *n)
	}
	k, err := dist.ParseKind(*kind)
	if err != nil {
		return err
	}
	kt, err := dist.ParseKeyType(*keytype)
	if err != nil {
		return err
	}
	if *prefix != "" && kt != dist.KeyString {
		return fmt.Errorf("generate: -prefix only applies to -keytype string")
	}
	g := dist.Gen{Kind: k, Seed: *seed, Domain: *domain}
	switch kt {
	case dist.KeyUint64:
		if err := writeKeys(*out, g.Keys(*n)); err != nil {
			return err
		}
	case dist.KeyFloat64:
		if err := writeFloats(*out, g.Floats(*n)); err != nil {
			return err
		}
	case dist.KeyString:
		if err := writeStrings(*out, g.Strings(*n, *prefix)); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d %s %s keys to %s\n", *n, k, kt, *out)
	return nil
}

func cmdSort(args []string) error {
	fs := flag.NewFlagSet("sort", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	out := fs.String("out", "", "output file")
	procs := fs.Int("procs", 8, "simulated processors")
	workers := fs.Int("workers", 2, "workers per processor")
	transport := fs.String("transport", "chan", "transport: chan or tcp")
	listen := fs.String("listen", "", "comma-separated per-node TCP listen addresses (tcp transport; empty = loopback ephemeral)")
	peers := fs.String("peers", "", "comma-separated per-node TCP dial addresses (tcp transport; empty = the bound listen addresses)")
	factor := fs.Float64("sample-factor", 1.0, "sample size factor (paper's X multiplier)")
	noInv := fs.Bool("no-investigator", false, "disable the duplicate-splitter investigator")
	localSort := fs.String("localsort", "auto", "local sort path: auto, comparison or radix")
	overlap := fs.String("overlap", "auto", "exchange–merge overlap: auto, on, or off (barriered ablation)")
	keytype := fs.String("keytype", "uint64", "key type: uint64, float64 or string")
	recBytes := fs.Int("recbytes", 0, "attach an N-byte synthetic payload per key (sorts through the record path)")
	memBudget := fs.String("mem-budget", "", "per-node temporary-memory budget (e.g. 64M, 2G); sorts spill block-file runs to -spill-dir beyond it")
	spillDir := fs.String("spill-dir", "", "directory for spill run files (default: system temp dir)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("sort: -in and -out required")
	}
	if *recBytes < 0 {
		return fmt.Errorf("sort: -recbytes must be >= 0, got %d", *recBytes)
	}
	kt, err := dist.ParseKeyType(*keytype)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	lsMode, err := pgxsort.ParseLocalSortMode(*localSort)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	mergeMode, err := pgxsort.ParseOverlapFlag(*overlap)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	tcpCfg, err := tcpConfig(*transport, *listen, *peers, *procs)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	budget, err := pgxsort.ParseMemBudget(*memBudget)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	opts := pgxsort.Options{
		Procs:               *procs,
		WorkersPerProc:      *workers,
		Transport:           *transport,
		TCP:                 tcpCfg,
		SampleFactor:        *factor,
		DisableInvestigator: *noInv,
		LocalSort:           lsMode,
		Merge:               mergeMode,
		MemoryBudget:        budget,
		SpillDir:            *spillDir,
	}
	var n int
	switch kt {
	case dist.KeyUint64:
		n, err = sortFile(*in, *out, opts, *recBytes, readKeys, writeKeys)
	case dist.KeyFloat64:
		n, err = sortFile(*in, *out, opts, *recBytes, readFloats, writeFloats)
	case dist.KeyString:
		n, err = sortFile(*in, *out, opts, *recBytes, readStrings, writeStrings)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d sorted keys to %s\n", n, *out)
	return nil
}

// sortFile reads keys, sorts them (through the record path, with synthetic
// payloads, when recBytes > 0), prints the report, and writes the sorted
// keys back out in the same file format.
func sortFile[K cmp.Ordered](in, out string, opts pgxsort.Options,
	recBytes int, read func(string) ([]K, error), write func(string, []K) error) (int, error) {
	keys, err := read(in)
	if err != nil {
		return 0, err
	}
	var sorted []K
	var report *pgxsort.Report
	if recBytes == 0 {
		sorted, report, err = pgxsort.Sort(keys, opts)
		if err != nil {
			return 0, err
		}
	} else {
		res, err := sortWithPayloads(keys, opts, recBytes)
		if err != nil {
			return 0, err
		}
		sorted, report = res.Keys(), &res.Report
	}
	fmt.Print(report.String())
	if err := write(out, sorted); err != nil {
		return 0, err
	}
	return len(sorted), nil
}

// sortWithPayloads runs the record path: every key gets a deterministic
// recBytes-byte payload, the records are block-distributed across the
// processors and sorted with a payload-carrying codec.
func sortWithPayloads[K cmp.Ordered](keys []K, opts pgxsort.Options, recBytes int) (*pgxsort.Result[K], error) {
	c, err := pgxsort.NewRecordCluster[K](opts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	payloads := dist.Gen{Seed: uint64(len(keys))}.Payloads(len(keys), recBytes)
	p := opts.Procs
	if p <= 0 {
		p = 4
	}
	parts := make([][]pgxsort.Record[K], p)
	for i := 0; i < p; i++ {
		lo, hi := i*len(keys)/p, (i+1)*len(keys)/p
		part := make([]pgxsort.Record[K], hi-lo)
		for j := lo; j < hi; j++ {
			part[j-lo] = pgxsort.Record[K]{Key: keys[j], Payload: payloads[j]}
		}
		parts[i] = part
	}
	return c.SortRecords(parts)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	keytype := fs.String("keytype", "uint64", "key type: uint64, float64 or string")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("verify: -in required")
	}
	kt, err := dist.ParseKeyType(*keytype)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	var n int
	switch kt {
	case dist.KeyUint64:
		n, err = verifyFile(*in, readKeys, func(a, b uint64) bool { return b < a })
	case dist.KeyFloat64:
		// Floats are ordered by the IEEE-754 total order the engine sorts
		// into, so files containing NaN or -0.0 verify too.
		n, err = verifyFile(*in, readFloats, func(a, b float64) bool { return f64TotalLess(b, a) })
	case dist.KeyString:
		n, err = verifyFile(*in, readStrings, func(a, b string) bool { return b < a })
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d %s keys, sorted\n", *in, n, kt)
	return nil
}

// verifyFile checks the file's keys are sorted; greater reports a > b in
// the key type's sort order.
func verifyFile[K any](in string, read func(string) ([]K, error), greater func(a, b K) bool) (int, error) {
	keys, err := read(in)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(keys); i++ {
		if greater(keys[i-1], keys[i]) {
			return 0, fmt.Errorf("NOT sorted: order violated at index %d (%v < %v)",
				i, keys[i], keys[i-1])
		}
	}
	return len(keys), nil
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	keytype := fs.String("keytype", "uint64", "key type: uint64, float64 or string")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("describe: -in required")
	}
	kt, err := dist.ParseKeyType(*keytype)
	if err != nil {
		return fmt.Errorf("describe: %w", err)
	}
	switch kt {
	case dist.KeyFloat64:
		return describeFloats(*in)
	case dist.KeyString:
		return describeStrings(*in)
	}
	keys, err := readKeys(*in)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		fmt.Printf("%s: empty\n", *in)
		return nil
	}
	minK, maxK := keys[0], keys[0]
	for _, k := range keys {
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	fmt.Printf("%s: %d keys, min %d, max %d, duplicate ratio %.3f\n",
		*in, len(keys), minK, maxK, dist.DuplicateRatio(keys))
	domain := maxK + 1
	if domain == 0 { // maxK is MaxUint64; keep the top key in range
		domain = math.MaxUint64
	}
	h := dist.NewHistogram(keys, domain, 16)
	fmt.Print(h.Render(48))
	return nil
}

func describeFloats(in string) error {
	keys, err := readFloats(in)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		fmt.Printf("%s: empty\n", in)
		return nil
	}
	minK, maxK := keys[0], keys[0]
	nan := 0
	for _, k := range keys {
		if k != k {
			nan++
			continue
		}
		if f64TotalLess(k, minK) || minK != minK {
			minK = k
		}
		if f64TotalLess(maxK, k) || maxK != maxK {
			maxK = k
		}
	}
	fmt.Printf("%s: %d float64 keys, min %g, max %g, NaN %d\n", in, len(keys), minK, maxK, nan)
	return nil
}

func describeStrings(in string) error {
	keys, err := readStrings(in)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		fmt.Printf("%s: empty\n", in)
		return nil
	}
	minK, maxK := keys[0], keys[0]
	bytes := 0
	for _, k := range keys {
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
		bytes += len(k)
	}
	fmt.Printf("%s: %d string keys, min %q, max %q, avg len %.1f\n",
		in, len(keys), minK, maxK, float64(bytes)/float64(len(keys)))
	return nil
}

// tcpConfig assembles the transport config from the -listen/-peers
// flags, validating them against the processor count.
func tcpConfig(transport, listen, peers string, procs int) (pgxsort.TransportConfig, error) {
	var cfg pgxsort.TransportConfig
	if listen == "" && peers == "" {
		return cfg, nil
	}
	if transport != pgxsort.TransportTCP {
		return cfg, fmt.Errorf("-listen/-peers require -transport tcp")
	}
	cfg.Listen = tp.SplitAddrs(listen)
	cfg.Peers = tp.SplitAddrs(peers)
	if len(cfg.Listen) > 0 && len(cfg.Listen) != procs {
		return cfg, fmt.Errorf("-listen names %d addresses for %d processors", len(cfg.Listen), procs)
	}
	if len(cfg.Peers) > 0 && len(cfg.Peers) != procs {
		return cfg, fmt.Errorf("-peers names %d addresses for %d processors", len(cfg.Peers), procs)
	}
	return cfg, nil
}
