package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pgxsort/internal/dist"
)

// cmdSubmit is the pgxsortd client: it ships a key file to a running
// server and writes the sorted bytes back, or asks the query endpoints
// (top-k, rank) instead of sorting. Sort submissions use the
// octet-stream shape of POST /v1/sort — the request body is the key
// file's bytes verbatim, and the response body is byte-identical to
// what `pgxsort sort` would have written (see docs/API.md).
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:7421", "pgxsortd base URL")
	in := fs.String("in", "", "input key file")
	out := fs.String("out", "", "output file for the sorted keys (sort mode)")
	keytype := fs.String("keytype", "uint64", "key type: uint64, float64 or string")
	tenant := fs.String("tenant", "", "tenant name for per-tenant admission")
	deadline := fs.Duration("deadline", 0, "per-job deadline (0 = server default)")
	topk := fs.Int("topk", 0, "query the k largest keys instead of sorting")
	bottom := fs.Bool("bottom", false, "with -topk: the k smallest keys instead")
	rank := fs.String("rank", "", "query one key's global rank instead of sorting")
	noCache := fs.Bool("no-cache", false, "bypass the server's result cache")
	retries := fs.Int("retries", 3, "retries after a connection error or a 429/503 busy answer (0 disables)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("submit: -in required")
	}
	if *topk > 0 && *rank != "" {
		return fmt.Errorf("submit: -topk and -rank are mutually exclusive")
	}
	kt, err := dist.ParseKeyType(*keytype)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	base := strings.TrimRight(*server, "/")
	client := &http.Client{}
	switch {
	case *topk > 0:
		raw, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		return submitQuery(client, base+"/v1/topk", map[string]any{
			"tenant": *tenant, "key_type": string(kt),
			"keys_b64": base64.StdEncoding.EncodeToString(raw),
			"k":        *topk, "bottom": *bottom,
			"deadline_ms": deadlineMS(*deadline),
		}, *retries)
	case *rank != "":
		raw, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		return submitQuery(client, base+"/v1/rank", map[string]any{
			"tenant": *tenant, "key_type": string(kt),
			"keys_b64":    base64.StdEncoding.EncodeToString(raw),
			"key":         *rank,
			"deadline_ms": deadlineMS(*deadline),
		}, *retries)
	default:
		if *out == "" {
			return fmt.Errorf("submit: -out required (or use -topk/-rank)")
		}
		// Sort uploads stream straight from disk: the key file never
		// sits whole in client memory, matching the server's streaming
		// ingress on the other end.
		return submitSort(client, base, kt, *in, *out, *tenant, *deadline, *noCache, *retries)
	}
}

// bodyFunc opens one request body per attempt — retries cannot reuse a
// consumed stream, so each attempt gets a fresh reader and its length.
type bodyFunc func() (io.ReadCloser, int64, error)

// bytesBody serves one in-memory payload (JSON queries).
func bytesBody(b []byte) bodyFunc {
	return func() (io.ReadCloser, int64, error) {
		return io.NopCloser(bytes.NewReader(b)), int64(len(b)), nil
	}
}

// fileBody streams one file from disk with its size as Content-Length.
func fileBody(path string) bodyFunc {
	return func() (io.ReadCloser, int64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, 0, err
		}
		return f, st.Size(), nil
	}
}

// retrySleep is swapped out by tests so retry backoffs do not slow the
// suite down.
var retrySleep = time.Sleep

// submitBackoff is the capped exponential backoff between submit
// attempts: 200ms, 400ms, 800ms, ... topping out at 5s.
func submitBackoff(attempt int) time.Duration {
	d := 200 * time.Millisecond
	for i := 0; i < attempt && d < 5*time.Second; i++ {
		d *= 2
	}
	return min(d, 5*time.Second)
}

// retryableStatus reports whether a status code is an explicit
// back-off-and-retry signal: 429 (admission queue full) and 503
// (draining, or a refusal with Retry-After). Anything else is final —
// a 400 or 504 will not get better by resending the same job.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// postWithRetry POSTs body, retrying transient connection errors and
// 429/503 busy answers up to retries times. A Retry-After header on a
// busy answer overrides the exponential backoff — the server knows its
// queue better than the client's clock does.
func postWithRetry(client *http.Client, url, contentType string, body bodyFunc, retries int) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		rc, length, err := body()
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest(http.MethodPost, url, rc)
		if err != nil {
			rc.Close()
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		req.ContentLength = length
		resp, err := client.Do(req)
		if err != nil {
			if attempt >= retries {
				return nil, fmt.Errorf("submit: %w (after %d attempts)", err, attempt+1)
			}
			retrySleep(submitBackoff(attempt))
			continue
		}
		if attempt >= retries || !retryableStatus(resp.StatusCode) {
			return resp, nil
		}
		wait := submitBackoff(attempt)
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(strings.TrimSpace(ra)); err == nil && secs >= 0 {
				wait = time.Duration(secs) * time.Second
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "submit: server busy (%s), retrying in %v (attempt %d of %d)\n",
			resp.Status, wait, attempt+1, retries+1)
		retrySleep(wait)
	}
}

func deadlineMS(d time.Duration) int64 { return d.Milliseconds() }

// submitSort streams the key file up and the sorted (possibly chunked)
// answer back down to the output file — neither direction holds the
// dataset whole in this process.
func submitSort(client *http.Client, base string, kt dist.KeyType, in, out, tenant string, deadline time.Duration, noCache bool, retries int) error {
	url := fmt.Sprintf("%s/v1/sort?key_type=%s", base, kt)
	if tenant != "" {
		url += "&tenant=" + tenant
	}
	if deadline > 0 {
		url += fmt.Sprintf("&deadline_ms=%d", deadline.Milliseconds())
	}
	if noCache {
		url += "&no_cache=true"
	}
	resp, err := postWithRetry(client, url, "application/octet-stream", fileBody(in), retries)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serverError(resp)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return fmt.Errorf("submit: reading response: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("job %s: wrote %s sorted keys to %s (cache %s)\n",
		resp.Header.Get("X-Pgxsortd-Job"), resp.Header.Get("X-Pgxsortd-N"),
		out, resp.Header.Get("X-Pgxsortd-Cache"))
	return nil
}

// submitQuery POSTs a JSON body and pretty-prints the JSON answer.
func submitQuery(client *http.Client, url string, body map[string]any, retries int) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := postWithRetry(client, url, "application/json", bytesBody(buf), retries)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serverError(resp)
	}
	var pretty bytes.Buffer
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("submit: reading response: %w", err)
	}
	if err := json.Indent(&pretty, raw, "", "  "); err != nil {
		pretty.Write(raw)
	}
	fmt.Println(pretty.String())
	return nil
}

// serverError renders a non-200 answer, surfacing the JSON error
// envelope and the Retry-After hint when present.
func serverError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		msg = env.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		return fmt.Errorf("submit: server answered %s: %s (retry after %ss)", resp.Status, msg, ra)
	}
	return fmt.Errorf("submit: server answered %s: %s", resp.Status, msg)
}
