package main

import (
	"fmt"
	"os"

	"pgxsort/internal/keyio"
)

// Key files come in three formats, selected by -keytype — the canonical
// internal/keyio encodings, shared with the pgxsortd HTTP bodies:
//
//	uint64  — little-endian uint64 array (the historical format)
//	float64 — little-endian IEEE-754 bit arrays, NaN and -0.0 included
//	string  — length-prefixed records: uint32 LE length, then raw bytes
//
// Every format round-trips bit-exactly, and because the service encodes
// through the same package, `pgxsort submit` responses are byte-identical
// to what `pgxsort sort` writes for the same input.

func writeKeys(path string, keys []uint64) error {
	return os.WriteFile(path, keyio.EncodeUint64s(keys), 0o644)
}

func readKeys(path string) ([]uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	keys, err := keyio.DecodeUint64s(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return keys, nil
}

func writeFloats(path string, keys []float64) error {
	return os.WriteFile(path, keyio.EncodeFloat64s(keys), 0o644)
}

func readFloats(path string) ([]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	keys, err := keyio.DecodeFloat64s(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return keys, nil
}

func writeStrings(path string, keys []string) error {
	return os.WriteFile(path, keyio.EncodeStrings(keys), 0o644)
}

func readStrings(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	keys, err := keyio.DecodeStrings(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return keys, nil
}

// f64TotalLess orders floats by the IEEE-754 total order, matching the
// engine's output order so verify accepts what sort wrote — NaNs
// included, which `<` cannot order.
func f64TotalLess(a, b float64) bool { return keyio.F64TotalLess(a, b) }
