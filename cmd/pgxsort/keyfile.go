package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Key files come in three formats, selected by -keytype:
//
//	uint64  — little-endian uint64 array (the historical format)
//	float64 — little-endian IEEE-754 bit arrays, NaN and -0.0 included
//	string  — length-prefixed records: uint32 LE length, then raw bytes
//
// Every format round-trips bit-exactly: a float file with NaN, -0.0 or
// the infinities reads back with identical bits.

func writeFloats(path string, keys []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(k))
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readFloats(path string) ([]float64, error) {
	u, err := readKeys(path)
	if err != nil {
		return nil, err
	}
	keys := make([]float64, len(u))
	for i, v := range u {
		keys[i] = math.Float64frombits(v)
	}
	return keys, nil
}

func writeStrings(path string, keys []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(k)))
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
		if _, err := w.WriteString(k); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readStrings(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var keys []string
	var lp [4]byte
	for {
		if _, err := io.ReadFull(r, lp[:]); err != nil {
			if err == io.EOF {
				return keys, nil
			}
			return nil, fmt.Errorf("%s: truncated length prefix: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(lp[:])
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("%s: truncated string key: %w", path, err)
		}
		keys = append(keys, string(b))
	}
}

// f64Norm is the IEEE-754 total-order transform (see comm.F64Codec.Norm):
// the order the engine's radix path sorts float keys into, with NaN and
// -0.0 pinned deterministically.
func f64Norm(k float64) uint64 {
	bits := math.Float64bits(k)
	if bits>>63 == 1 {
		return ^bits
	}
	return bits | (1 << 63)
}

// f64TotalLess orders floats by the IEEE-754 total order, matching the
// engine's output order so verify accepts what sort wrote — NaNs included,
// which `<` cannot order.
func f64TotalLess(a, b float64) bool { return f64Norm(a) < f64Norm(b) }
