package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	in := []uint64{0, 1, 1<<64 - 1, 42}
	if err := writeKeys(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d keys, wrote %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("key %d: %d != %d", i, out[i], in[i])
		}
	}
}

func TestReadKeysRejectsBadSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readKeys(path); err == nil {
		t.Fatal("3-byte file accepted")
	}
	if _, err := readKeys(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEmptyKeyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.bin")
	if err := writeKeys(path, nil); err != nil {
		t.Fatal(err)
	}
	out, err := readKeys(path)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round trip: %v, %d keys", err, len(out))
	}
}
