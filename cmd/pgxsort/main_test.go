package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	in := []uint64{0, 1, 1<<64 - 1, 42}
	if err := writeKeys(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d keys, wrote %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("key %d: %d != %d", i, out[i], in[i])
		}
	}
}

func TestReadKeysRejectsBadSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readKeys(path); err == nil {
		t.Fatal("3-byte file accepted")
	}
	if _, err := readKeys(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEmptyKeyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.bin")
	if err := writeKeys(path, nil); err != nil {
		t.Fatal(err)
	}
	out, err := readKeys(path)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round trip: %v, %d keys", err, len(out))
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf, _ := io.ReadAll(r)
		done <- string(buf)
	}()
	ferr := fn()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// The CLI's end-to-end flow: generate a duplicate-heavy dataset, sort it,
// verify the order, and describe both files.
func TestGenerateSortDescribeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "keys.bin")
	sorted := filepath.Join(dir, "sorted.bin")

	captureStdout(t, func() error {
		return cmdGenerate([]string{"-kind", "right-skewed", "-n", "100000", "-seed", "11", "-out", raw})
	})
	captureStdout(t, func() error {
		return cmdSort([]string{"-in", raw, "-out", sorted, "-procs", "8", "-workers", "2"})
	})
	captureStdout(t, func() error {
		return cmdVerify([]string{"-in", sorted})
	})

	desc := captureStdout(t, func() error {
		return cmdDescribe([]string{"-in", sorted})
	})
	if !strings.Contains(desc, "duplicate ratio") {
		t.Errorf("describe output missing duplicate ratio:\n%s", desc)
	}
	if !strings.Contains(desc, "#") || !strings.Contains(desc, "%") {
		t.Errorf("describe output missing histogram:\n%s", desc)
	}

	// The sorted file must be an exact permutation of the input.
	in, err := readKeys(raw)
	if err != nil {
		t.Fatal(err)
	}
	out, err := readKeys(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != len(out) {
		t.Fatalf("sort changed key count: %d -> %d", len(in), len(out))
	}
	slices.Sort(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("output is not a permutation of the input at %d: %d != %d", i, out[i], in[i])
		}
	}
}

// Acceptance criterion: generate with a fixed seed is byte-deterministic
// across runs.
func TestGenerateByteDeterminism(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.bin")
	b := filepath.Join(dir, "b.bin")
	for _, kind := range []string{"uniform", "normal", "right-skewed", "exponential"} {
		args := func(out string) []string {
			return []string{"-kind", kind, "-n", "20000", "-seed", "99", "-domain", "4096", "-out", out}
		}
		captureStdout(t, func() error { return cmdGenerate(args(a)) })
		captureStdout(t, func() error { return cmdGenerate(args(b)) })
		ba, err := os.ReadFile(a)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Errorf("%s: two runs with the same seed produced different bytes", kind)
		}
	}
}

func TestDescribeRequiresInput(t *testing.T) {
	if err := cmdDescribe(nil); err == nil {
		t.Fatal("describe without -in accepted")
	}
	if err := cmdGenerate([]string{"-kind", "no-such-dist", "-out", filepath.Join(t.TempDir(), "x.bin")}); err == nil {
		t.Fatal("generate accepted an unknown distribution")
	}
	if err := cmdGenerate([]string{"-n", "-1", "-out", filepath.Join(t.TempDir(), "x.bin")}); err == nil {
		t.Fatal("generate accepted a negative key count")
	}
}

// Describing a file whose max key is MaxUint64 must not overflow the
// histogram domain.
func TestDescribeMaxKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "max.bin")
	if err := writeKeys(path, []uint64{0, 7, 1<<64 - 1}); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdDescribe([]string{"-in", path})
	})
	if !strings.Contains(out, "max 18446744073709551615") {
		t.Errorf("describe output missing max key:\n%s", out)
	}
	// The top key must land in the last bucket, not be clamped into a
	// DefaultDomain-sized histogram.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "#") {
		t.Errorf("last bucket empty; histogram domain likely overflowed:\n%s", out)
	}
}
