package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubSleep replaces the retry backoff with a recorder for the duration
// of one test.
func stubSleep(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	old := retrySleep
	retrySleep = func(d time.Duration) { slept = append(slept, d) }
	t.Cleanup(func() { retrySleep = old })
	return &slept
}

// A server that answers 429 with Retry-After until the pressure lifts:
// submit must back off for the advertised interval and then succeed.
func TestSubmitRetriesBusyAnswerHonoringRetryAfter(t *testing.T) {
	slept := stubSleep(t)
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	}))
	defer ts.Close()

	in := filepath.Join(t.TempDir(), "in.bin")
	out := filepath.Join(t.TempDir(), "out.bin")
	if err := writeKeys(in, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	captureStdout(t, func() error {
		return cmdSubmit([]string{"-server", ts.URL, "-in", in, "-out", out, "-retries", "3"})
	})
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(*slept) != 2 || (*slept)[0] != 2*time.Second || (*slept)[1] != 2*time.Second {
		t.Fatalf("backoffs %v, want two 2s waits from Retry-After", *slept)
	}
	if raw, err := os.ReadFile(out); err != nil || len(raw) != 8 {
		t.Fatalf("sorted output not written: %v (%d bytes)", err, len(raw))
	}
}

// A dead endpoint: connection errors are retried with the capped
// exponential backoff, then surfaced with the attempt count.
func TestSubmitRetriesConnectionErrors(t *testing.T) {
	slept := stubSleep(t)
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // nothing listens here any more

	in := filepath.Join(t.TempDir(), "in.bin")
	if err := writeKeys(in, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	err := cmdSubmit([]string{"-server", ts.URL, "-in", in,
		"-out", filepath.Join(t.TempDir(), "out.bin"), "-retries", "2"})
	if err == nil {
		t.Fatal("submit to a dead server succeeded")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error does not report the attempt count: %v", err)
	}
	want := []time.Duration{200 * time.Millisecond, 400 * time.Millisecond}
	if len(*slept) != 2 || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("backoffs %v, want %v", *slept, want)
	}
}

// Non-retryable statuses fail immediately: resending a bad request or a
// timed-out job would not help.
func TestSubmitDoesNotRetryFinalStatuses(t *testing.T) {
	slept := stubSleep(t)
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad key_type"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	in := filepath.Join(t.TempDir(), "in.bin")
	if err := writeKeys(in, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	err := cmdSubmit([]string{"-server", ts.URL, "-in", in,
		"-out", filepath.Join(t.TempDir(), "out.bin"), "-retries", "5"})
	if err == nil {
		t.Fatal("400 answer did not surface as an error")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v for a non-retryable status", *slept)
	}
}

// -retries 0 restores single-shot behavior: a 503 is reported, not
// retried.
func TestSubmitRetriesDisabled(t *testing.T) {
	slept := stubSleep(t)
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	in := filepath.Join(t.TempDir(), "in.bin")
	if err := writeKeys(in, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	err := cmdSubmit([]string{"-server", ts.URL, "-in", in,
		"-out", filepath.Join(t.TempDir(), "out.bin"), "-retries", "0"})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want the 503 surfaced, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts with retries disabled, want 1", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v with retries disabled", *slept)
	}
}

func TestSubmitBackoffCaps(t *testing.T) {
	want := []time.Duration{
		200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond,
		1600 * time.Millisecond, 3200 * time.Millisecond, 5 * time.Second, 5 * time.Second,
	}
	for i, w := range want {
		if got := submitBackoff(i); got != w {
			t.Errorf("submitBackoff(%d) = %v, want %v", i, got, w)
		}
	}
	if got := submitBackoff(100); got != 5*time.Second {
		t.Errorf("submitBackoff(100) = %v, want the 5s cap", got)
	}
}
