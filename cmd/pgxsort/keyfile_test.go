package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Float key files must round-trip bit-exactly, including the values plain
// `<` cannot handle: NaN, -0.0 and the infinities.
func TestFloatFileRoundTripSpecials(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	in := []float64{
		math.NaN(), math.Inf(-1), -1.5, math.Copysign(0, -1), 0, 2.25, math.Inf(1),
	}
	if err := writeFloats(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFloats(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d floats, wrote %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Fatalf("float %d: bits %x != %x", i, math.Float64bits(out[i]), math.Float64bits(in[i]))
		}
	}
}

func TestStringFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.bin")
	in := []string{"", "a", "züricher-straße", strings.Repeat("x", 3000), "\x00\xff\x00"}
	if err := writeStrings(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readStrings(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d strings, wrote %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("string %d: %q != %q", i, out[i], in[i])
		}
	}
}

func TestReadStringsRejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	// Length prefix says 10 bytes, only 3 present.
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte{10, 0, 0, 0, 'a', 'b', 'c'}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readStrings(bad); err == nil {
		t.Fatal("truncated string file accepted")
	}
	// A dangling 2-byte prefix is also malformed.
	short := filepath.Join(dir, "short.bin")
	if err := os.WriteFile(short, []byte{1, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readStrings(short); err == nil {
		t.Fatal("dangling length prefix accepted")
	}
}

// End-to-end float flow at the CLI level: a file salted with NaN, -0.0 and
// the infinities sorts into IEEE total order and verifies.
func TestFloatSortVerifyCLI(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "f.bin")
	sorted := filepath.Join(dir, "f-sorted.bin")

	captureStdout(t, func() error {
		return cmdGenerate([]string{"-keytype", "float64", "-kind", "normal", "-n", "5000", "-seed", "7", "-out", raw})
	})
	// Salt the generated file with the special values.
	keys, err := readFloats(raw)
	if err != nil {
		t.Fatal(err)
	}
	keys = append(keys, math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0)
	if err := writeFloats(raw, keys); err != nil {
		t.Fatal(err)
	}

	captureStdout(t, func() error {
		return cmdSort([]string{"-keytype", "float64", "-in", raw, "-out", sorted, "-procs", "4", "-workers", "2"})
	})
	captureStdout(t, func() error {
		return cmdVerify([]string{"-keytype", "float64", "-in", sorted})
	})

	out, err := readFloats(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(keys) {
		t.Fatalf("sort changed key count: %d -> %d", len(keys), len(out))
	}
	// Total order: -Inf first, +Inf then NaN last; -0.0 strictly before 0.
	if !math.IsInf(out[0], -1) {
		t.Errorf("first key %v, want -Inf", out[0])
	}
	last := out[len(out)-1]
	if !math.IsNaN(last) {
		t.Errorf("last key %v, want NaN (total order places NaN above +Inf)", last)
	}
	negZeroAt, zeroAt := -1, -1
	for i, k := range out {
		if k == 0 {
			if math.Signbit(k) && negZeroAt < 0 {
				negZeroAt = i
			}
			if !math.Signbit(k) {
				zeroAt = i
			}
		}
	}
	if negZeroAt < 0 || zeroAt < 0 || negZeroAt > zeroAt {
		t.Errorf("-0.0 at %d, 0 at %d: total order violated", negZeroAt, zeroAt)
	}
	desc := captureStdout(t, func() error {
		return cmdDescribe([]string{"-keytype", "float64", "-in", sorted})
	})
	if !strings.Contains(desc, "NaN 1") {
		t.Errorf("describe did not count the NaN:\n%s", desc)
	}
}

// End-to-end string flow, with a shared prefix long enough to collapse the
// radix norms and a payload attached to every key (-recbytes).
func TestStringSortWithPayloadsCLI(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "s.bin")
	sorted := filepath.Join(dir, "s-sorted.bin")

	captureStdout(t, func() error {
		return cmdGenerate([]string{"-keytype", "string", "-kind", "right-skewed", "-n", "20000",
			"-seed", "3", "-domain", "5000", "-prefix", "shared-long-prefix/", "-out", raw})
	})
	sortOut := captureStdout(t, func() error {
		return cmdSort([]string{"-keytype", "string", "-recbytes", "32", "-in", raw, "-out", sorted,
			"-procs", "4", "-workers", "2"})
	})
	if !strings.Contains(sortOut, "local sort") {
		t.Errorf("sort report missing:\n%s", sortOut)
	}
	captureStdout(t, func() error {
		return cmdVerify([]string{"-keytype", "string", "-in", sorted})
	})

	in, err := readStrings(raw)
	if err != nil {
		t.Fatal(err)
	}
	out, err := readStrings(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != len(out) {
		t.Fatalf("sort changed key count: %d -> %d", len(in), len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("not sorted at %d: %q < %q", i, out[i], out[i-1])
		}
	}
}

func TestGenerateRejectsPrefixForNonStrings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bin")
	if err := cmdGenerate([]string{"-prefix", "p", "-out", path}); err == nil {
		t.Fatal("uint64 generate accepted -prefix")
	}
	if err := cmdGenerate([]string{"-keytype", "no-such-type", "-out", path}); err == nil {
		t.Fatal("generate accepted an unknown key type")
	}
	if err := cmdSort([]string{"-in", path, "-out", path, "-recbytes", "-1"}); err == nil {
		t.Fatal("sort accepted a negative -recbytes")
	}
}
