// Command pgxsort-bench regenerates the tables and figures of the paper's
// evaluation section (§V). Each experiment prints the rows/series the
// paper plots; -csv exports them for external plotting or for the CI
// benchmark-trajectory artifact.
//
// Usage:
//
//	pgxsort-bench -list
//	pgxsort-bench -exp fig5,fig6 -n 2000000 -procs 8,16,32,52
//	pgxsort-bench -exp all -csv out/
//	pgxsort-bench -exp fig5 -pipeline -csv -        # CSV to stdout (CI)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/harness"
	tp "pgxsort/internal/transport"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list experiments and exit")
		n         = flag.Int("n", 1<<20, "total keys for the distribution datasets")
		procs     = flag.String("procs", "8,16,32,52", "comma-separated processor sweep")
		workers   = flag.Int("workers", 2, "worker threads per processor")
		seed      = flag.Uint64("seed", 0, "generator seed (0 = default)")
		transport = flag.String("transport", "chan", "transport: chan or tcp")
		listen    = flag.String("listen", "", "comma-separated per-node TCP listen addresses (tcp transport; must match every -procs value)")
		peers     = flag.String("peers", "", "comma-separated per-node TCP dial addresses (tcp transport; must match every -procs value)")
		twScale   = flag.Int("twitter-scale", 16, "RMAT scale of the Twitter stand-in (2^scale vertices)")
		reps      = flag.Int("reps", 1, "repetitions per timed point (fastest kept)")
		csvOut    = flag.String("csv", "", "CSV output: a directory for per-table files, or '-' for stdout (tables then go to stderr)")
		pipeline  = flag.Bool("pipeline", false, "also run the SortMany pipeline sweep (shorthand for adding 'pipeline' to -exp)")
		inflight  = flag.Int("inflight", 0, "SortMany scheduler admission cap for the pipeline sweep (0 = default)")
		localSort = flag.String("localsort", "auto", "step-1 path for all experiments: auto, comparison or radix")
		overlap   = flag.String("overlap", "auto", "exchange–merge overlap for experiments that do not sweep it: auto, on, or off")
		keytype   = flag.String("keytype", "", "restrict the keytypes experiment to one key domain: uint64, float64 or string (empty = sweep all)")
		recBytes  = flag.Int("recbytes", 0, "payload bytes per key for the keytypes experiment's record points (0 = default sweep)")
		memBudget = flag.String("mem-budget", "", "per-node temporary-memory budget for experiments that do not sweep it (e.g. 64M; the spill experiment sweeps its own)")
		spillDir  = flag.String("spill-dir", "", "directory for spill run files (default: system temp dir)")
	)
	flag.Parse()

	lsMode, err := core.ParseLocalSortMode(*localSort)
	if err != nil {
		fatal(err)
	}
	mergeMode, err := core.ParseOverlapFlag(*overlap)
	if err != nil {
		fatal(err)
	}
	var ktype dist.KeyType
	if *keytype != "" {
		if ktype, err = dist.ParseKeyType(*keytype); err != nil {
			fatal(err)
		}
	}
	if *recBytes < 0 {
		fatal(fmt.Errorf("-recbytes must be >= 0, got %d", *recBytes))
	}
	budget, err := core.ParseMemBudget(*memBudget)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Desc)
		}
		return
	}

	procList, err := parseInts(*procs)
	if err != nil {
		fatal(err)
	}
	cfg := harness.Config{
		N:            *n,
		Procs:        procList,
		Workers:      *workers,
		Seed:         *seed,
		Transport:    *transport,
		TwitterScale: *twScale,
		Reps:         *reps,
		Inflight:     *inflight,
		LocalSort:    lsMode,
		Merge:        mergeMode,
		ListenAddrs:  tp.SplitAddrs(*listen),
		PeerAddrs:    tp.SplitAddrs(*peers),
		KeyType:      ktype,
		RecBytes:     *recBytes,
		MemBudget:    budget,
		SpillDir:     *spillDir,
	}
	if (len(cfg.ListenAddrs) > 0 || len(cfg.PeerAddrs) > 0) && *transport != "tcp" {
		fatal(fmt.Errorf("-listen/-peers require -transport tcp"))
	}

	tables, err := harness.Run(expIDs(*exp, *pipeline), cfg)
	if err != nil {
		fatal(err)
	}

	// With -csv -, the machine-readable stream owns stdout; keep the
	// human-readable tables on stderr so both remain usable in CI logs.
	tableOut := os.Stdout
	if *csvOut == "-" {
		tableOut = os.Stderr
	}
	counts := map[string]int{}
	for i := range tables {
		fmt.Fprintln(tableOut, tables[i].Render())
		switch *csvOut {
		case "":
		case "-":
			fmt.Printf("# == %s: %s\n%s\n", tables[i].ID, tables[i].Title, tables[i].CSV())
		default:
			counts[tables[i].ID]++
			n := 0
			if counts[tables[i].ID] > 1 {
				n = counts[tables[i].ID]
			}
			path, err := tables[i].WriteCSV(*csvOut, n)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(tableOut, "(csv: %s)\n\n", path)
		}
	}
}

// expIDs resolves the -exp list, appending the pipeline sweep when the
// -pipeline shorthand asks for it and the list doesn't already run it.
func expIDs(exp string, pipeline bool) []string {
	ids := strings.Split(exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if pipeline {
		all := len(ids) == 1 && ids[0] == "all"
		seen := false
		for _, id := range ids {
			if id == "pipeline" {
				seen = true
			}
		}
		if !all && !seen {
			ids = append(ids, "pipeline")
		}
	}
	return ids
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no processor counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgxsort-bench:", err)
	os.Exit(1)
}
