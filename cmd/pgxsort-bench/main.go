// Command pgxsort-bench regenerates the tables and figures of the paper's
// evaluation section (§V). Each experiment prints the rows/series the
// paper plots; -csv exports them for external plotting.
//
// Usage:
//
//	pgxsort-bench -list
//	pgxsort-bench -exp fig5,fig6 -n 2000000 -procs 8,16,32,52
//	pgxsort-bench -exp all -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pgxsort/internal/harness"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list experiments and exit")
		n         = flag.Int("n", 1<<20, "total keys for the distribution datasets")
		procs     = flag.String("procs", "8,16,32,52", "comma-separated processor sweep")
		workers   = flag.Int("workers", 2, "worker threads per processor")
		seed      = flag.Uint64("seed", 0, "generator seed (0 = default)")
		transport = flag.String("transport", "chan", "transport: chan or tcp")
		twScale   = flag.Int("twitter-scale", 16, "RMAT scale of the Twitter stand-in (2^scale vertices)")
		reps      = flag.Int("reps", 1, "repetitions per timed point (fastest kept)")
		csvDir    = flag.String("csv", "", "directory to export CSV files (optional)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Desc)
		}
		return
	}

	procList, err := parseInts(*procs)
	if err != nil {
		fatal(err)
	}
	cfg := harness.Config{
		N:            *n,
		Procs:        procList,
		Workers:      *workers,
		Seed:         *seed,
		Transport:    *transport,
		TwitterScale: *twScale,
		Reps:         *reps,
	}

	ids := strings.Split(*exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	tables, err := harness.Run(ids, cfg)
	if err != nil {
		fatal(err)
	}
	counts := map[string]int{}
	for i := range tables {
		fmt.Println(tables[i].Render())
		if *csvDir != "" {
			counts[tables[i].ID]++
			n := 0
			if counts[tables[i].ID] > 1 {
				n = counts[tables[i].ID]
			}
			path, err := tables[i].WriteCSV(*csvDir, n)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("(csv: %s)\n\n", path)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no processor counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgxsort-bench:", err)
	os.Exit(1)
}
