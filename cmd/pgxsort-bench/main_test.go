package main

import (
	"strings"
	"testing"
)

func TestExpIDs(t *testing.T) {
	cases := []struct {
		exp      string
		pipeline bool
		want     string
	}{
		{"all", false, "all"},
		{"all", true, "all"}, // 'all' already includes pipeline
		{"fig5, fig6", false, "fig5,fig6"},
		{"fig5,fig6", true, "fig5,fig6,pipeline"},
		{"pipeline", true, "pipeline"},
		{"fig5,pipeline", true, "fig5,pipeline"},
	}
	for _, c := range cases {
		got := strings.Join(expIDs(c.exp, c.pipeline), ",")
		if got != c.want {
			t.Errorf("expIDs(%q, %v) = %q, want %q", c.exp, c.pipeline, got, c.want)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("8, 16,32")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 16, 32}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
	if _, err := parseInts("8,x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Fatal("zero accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := parseInts(",,"); err == nil {
		t.Fatal("only separators accepted")
	}
}
