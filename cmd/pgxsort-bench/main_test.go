package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("8, 16,32")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 16, 32}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
	if _, err := parseInts("8,x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Fatal("zero accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := parseInts(",,"); err == nil {
		t.Fatal("only separators accepted")
	}
}
