package pgxsort

// One benchmark per table and figure of the paper's evaluation (§V), plus
// the ablations listed in DESIGN.md. These run at laptop scale; the
// cmd/pgxsort-bench CLI regenerates the full tables at configurable sizes.

import (
	"context"
	"fmt"
	"testing"

	"pgxsort/internal/baselines"
	"pgxsort/internal/comm"
	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/graph"
	"pgxsort/internal/harness"
	"pgxsort/internal/spark"
)

const (
	benchN     = 200_000
	benchProcs = 8
	benchWkrs  = 2
)

// benchParts builds the per-processor inputs for one distribution, using
// the duplicate-heavy domains for the skewed kinds (see harness.Config).
func benchParts(kind dist.Kind, procs, total int) [][]uint64 {
	var domain uint64
	switch kind {
	case dist.RightSkewed:
		domain = 64
	case dist.Exponential:
		domain = 12
	}
	parts := make([][]uint64, procs)
	per := total / procs
	for i := range parts {
		parts[i] = dist.Gen{Kind: kind, Seed: uint64(7919*i + 1), Domain: domain}.Keys(per)
	}
	return parts
}

func benchTwitterDegrees(scale int) []uint64 {
	g := graph.TwitterLike(graph.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 99})
	return g.Degrees(nil)
}

func sortOnce(b *testing.B, parts [][]uint64, opts core.Options) *core.Report {
	b.Helper()
	opts.Procs = len(parts)
	if opts.WorkersPerProc == 0 {
		opts.WorkersPerProc = benchWkrs
	}
	eng, err := core.NewEngine[uint64](opts, comm.U64Codec{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Sort(parts)
	if err != nil {
		b.Fatal(err)
	}
	return &res.Report
}

// BenchmarkFig4Distributions measures dataset generation for the four
// input distributions of Figure 4.
func BenchmarkFig4Distributions(b *testing.B) {
	for _, kind := range dist.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			out := make([]uint64, benchN)
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				dist.Gen{Kind: kind, Seed: uint64(i)}.Fill(out)
			}
		})
	}
}

// BenchmarkFig5TotalTime measures PGX.D total sort time per distribution
// (Figure 5).
func BenchmarkFig5TotalTime(b *testing.B) {
	for _, kind := range dist.Kinds {
		b.Run(fmt.Sprintf("%s/p=%d", kind, benchProcs), func(b *testing.B) {
			parts := benchParts(kind, benchProcs, benchN)
			b.SetBytes(benchN * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := sortOnce(b, parts, core.Options{})
				if i == b.N-1 {
					b.ReportMetric(rep.LoadImbalance(), "max/avg")
				}
			}
		})
	}
}

// BenchmarkFig6StrongScaling measures both engines across processor
// counts (Figure 6).
func BenchmarkFig6StrongScaling(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		parts := benchParts(dist.Uniform, p, benchN)
		b.Run(fmt.Sprintf("pgxd/p=%d", p), func(b *testing.B) {
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				sortOnce(b, parts, core.Options{})
			}
		})
		b.Run(fmt.Sprintf("spark/p=%d", p), func(b *testing.B) {
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				sc := spark.NewContext(spark.Config{Partitions: p, TotalCores: p * benchWkrs, Seed: 1})
				rdd, err := spark.FromParts(sc, parts)
				if err != nil {
					b.Fatal(err)
				}
				spark.SortByKey(rdd, comm.U64Codec{})
				sc.Close()
			}
		})
	}
}

// BenchmarkSortManyPipeline compares SortMany schedules — sequential,
// naive-concurrent (the old unbounded go-per-dataset behaviour) and the
// pipelined scheduler — on the Figure 5/6 multi-dataset mix: one dataset
// per input distribution, sorted over one engine. The pipelined schedule
// overlaps one dataset's exchange with another's local compute; its
// throughput win over both baselines is ISSUE 2's headline number.
func BenchmarkSortManyPipeline(b *testing.B) {
	datasets := make([][][]uint64, len(dist.Kinds))
	for d, kind := range dist.Kinds {
		datasets[d] = benchParts(kind, benchProcs, benchN)
	}
	totalKeys := int64(len(datasets)) * benchN
	// Same schedule table as the harness "pipeline" experiment, so the
	// Go-bench smoke numbers and the CI CSV artifact stay comparable.
	for _, mode := range harness.PipelineModes(2) {
		b.Run(fmt.Sprintf("%s/p=%d", mode.Name, benchProcs), func(b *testing.B) {
			eng, err := core.NewEngine[uint64](
				core.Options{Procs: benchProcs, WorkersPerProc: benchWkrs}, comm.U64Codec{})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.SetBytes(totalKeys * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SortManyWith(context.Background(), mode.Opts, datasets...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7StepBreakdown reports per-step times as metrics (Figure 7).
func BenchmarkFig7StepBreakdown(b *testing.B) {
	for _, kind := range []dist.Kind{dist.Normal, dist.RightSkewed} {
		b.Run(kind.String(), func(b *testing.B) {
			parts := benchParts(kind, benchProcs, benchN)
			b.SetBytes(benchN * 8)
			var last *core.Report
			for i := 0; i < b.N; i++ {
				last = sortOnce(b, parts, core.Options{})
			}
			for s := core.Step(0); s < core.NumSteps; s++ {
				b.ReportMetric(float64(last.Steps[s].Microseconds())/1000,
					s.String()+"-ms")
			}
		})
	}
}

// BenchmarkTable2LoadBalance sorts duplicate-heavy data on 10 processors
// and reports the balance (Table II).
func BenchmarkTable2LoadBalance(b *testing.B) {
	for _, kind := range []dist.Kind{dist.RightSkewed, dist.Exponential} {
		b.Run(kind.String(), func(b *testing.B) {
			parts := benchParts(kind, 10, benchN)
			b.SetBytes(benchN * 8)
			var last *core.Report
			for i := 0; i < b.N; i++ {
				last = sortOnce(b, parts, core.Options{})
			}
			b.ReportMetric(last.LoadImbalance(), "max/avg")
		})
	}
}

// BenchmarkFig8TwitterSort measures both engines on the Twitter-like
// degree keys (Figure 8).
func BenchmarkFig8TwitterSort(b *testing.B) {
	degrees := benchTwitterDegrees(14)
	parts := make([][]uint64, benchProcs)
	for i := range parts {
		lo := i * len(degrees) / benchProcs
		hi := (i + 1) * len(degrees) / benchProcs
		parts[i] = degrees[lo:hi]
	}
	b.Run("pgxd", func(b *testing.B) {
		b.SetBytes(int64(len(degrees)) * 8)
		for i := 0; i < b.N; i++ {
			sortOnce(b, parts, core.Options{})
		}
	})
	b.Run("spark", func(b *testing.B) {
		b.SetBytes(int64(len(degrees)) * 8)
		for i := 0; i < b.N; i++ {
			sc := spark.NewContext(spark.Config{Partitions: benchProcs, TotalCores: benchProcs * benchWkrs, Seed: 1})
			rdd, err := spark.FromParts(sc, parts)
			if err != nil {
				b.Fatal(err)
			}
			spark.SortByKey(rdd, comm.U64Codec{})
			sc.Close()
		}
	})
}

// BenchmarkTable3PartRanges sorts Twitter-like degrees and walks the
// per-processor ranges (Table III).
func BenchmarkTable3PartRanges(b *testing.B) {
	degrees := benchTwitterDegrees(13)
	for _, p := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			parts := make([][]uint64, p)
			for i := range parts {
				lo := i * len(degrees) / p
				hi := (i + 1) * len(degrees) / p
				parts[i] = degrees[lo:hi]
			}
			b.SetBytes(int64(len(degrees)) * 8)
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine[uint64](core.Options{Procs: p, WorkersPerProc: benchWkrs}, comm.U64Codec{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Sort(parts)
				if err != nil {
					b.Fatal(err)
				}
				ranges := res.PartRanges()
				if len(ranges) != p {
					b.Fatal("wrong range count")
				}
				eng.Close()
			}
		})
	}
}

// BenchmarkFig9SampleSize sweeps the sample-size factor (Figure 9).
func BenchmarkFig9SampleSize(b *testing.B) {
	degrees := benchTwitterDegrees(13)
	parts := make([][]uint64, benchProcs)
	for i := range parts {
		lo := i * len(degrees) / benchProcs
		hi := (i + 1) * len(degrees) / benchProcs
		parts[i] = degrees[lo:hi]
	}
	for _, f := range []float64{0.004, 0.04, 0.4, 1.0, 1.4} {
		b.Run(fmt.Sprintf("factor=%.3fX", f), func(b *testing.B) {
			b.SetBytes(int64(len(degrees)) * 8)
			var last *core.Report
			for i := 0; i < b.N; i++ {
				last = sortOnce(b, parts, core.Options{SampleFactor: f})
			}
			b.ReportMetric(float64(last.BytesSent), "comm-bytes")
			b.ReportMetric(last.LoadImbalance(), "max/avg")
		})
	}
}

// BenchmarkFig10MinMaxLoad reports min/max loads for the three factors of
// Figure 10.
func BenchmarkFig10MinMaxLoad(b *testing.B) {
	parts := benchParts(dist.RightSkewed, benchProcs, benchN)
	for _, f := range []float64{0.004, 1.0, 1.4} {
		b.Run(fmt.Sprintf("factor=%.3fX", f), func(b *testing.B) {
			b.SetBytes(benchN * 8)
			var last *core.Report
			for i := 0; i < b.N; i++ {
				last = sortOnce(b, parts, core.Options{SampleFactor: f})
			}
			minPart, maxPart := last.MinMaxPart()
			b.ReportMetric(float64(minPart), "min-part")
			b.ReportMetric(float64(maxPart), "max-part")
		})
	}
}

// BenchmarkFig11Memory reports the memory accounting of Figure 11.
func BenchmarkFig11Memory(b *testing.B) {
	degrees := benchTwitterDegrees(13)
	for _, p := range []int{4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			parts := make([][]uint64, p)
			for i := range parts {
				lo := i * len(degrees) / p
				hi := (i + 1) * len(degrees) / p
				parts[i] = degrees[lo:hi]
			}
			b.SetBytes(int64(len(degrees)) * 8)
			var last *core.Report
			for i := 0; i < b.N; i++ {
				last = sortOnce(b, parts, core.Options{})
			}
			b.ReportMetric(float64(last.ResidentBytes)/(1<<20), "resident-MB")
			b.ReportMetric(float64(last.TempPeakBytes)/(1<<20), "temp-peak-MB")
		})
	}
}

// BenchmarkAblationInvestigator isolates the investigator (DESIGN.md).
func BenchmarkAblationInvestigator(b *testing.B) {
	parts := benchParts(dist.RightSkewed, 10, benchN)
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchN * 8)
			var last *core.Report
			for i := 0; i < b.N; i++ {
				last = sortOnce(b, parts, core.Options{DisableInvestigator: disable})
			}
			b.ReportMetric(last.LoadImbalance(), "max/avg")
		})
	}
}

// BenchmarkMergeOverlap compares the streaming exchange–merge overlap
// against the barriered balanced baseline on the Figure 5/6 distribution
// mix at p=8 (ISSUE 5): each received run merges while the exchange is
// still in flight, so end-to-end time drops by (roughly) the merge work
// that fits inside the exchange window — reported as overlap-saved-ms
// from Report.MergeOverlapSaved.
func BenchmarkMergeOverlap(b *testing.B) {
	datasets := make([][][]uint64, len(dist.Kinds))
	for d, kind := range dist.Kinds {
		datasets[d] = benchParts(kind, benchProcs, benchN)
	}
	totalKeys := int64(len(datasets)) * benchN
	for _, mode := range []struct {
		name  string
		merge core.MergeStrategy
	}{
		{"barriered", core.MergeBalanced},
		{"overlap", core.MergeOverlap},
	} {
		b.Run(fmt.Sprintf("%s/p=%d", mode.name, benchProcs), func(b *testing.B) {
			eng, err := core.NewEngine[uint64](
				core.Options{Procs: benchProcs, WorkersPerProc: benchWkrs, Merge: mode.merge},
				comm.U64Codec{})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.SetBytes(totalKeys * 8)
			b.ResetTimer()
			var saved float64
			for i := 0; i < b.N; i++ {
				for d := range datasets {
					res, err := eng.Sort(datasets[d])
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						saved += float64(res.Report.MergeOverlapSaved.Microseconds()) / 1000
					}
				}
			}
			b.ReportMetric(saved, "overlap-saved-ms")
		})
	}
}

// BenchmarkAblationMergeStrategy compares step-6 merge strategies.
func BenchmarkAblationMergeStrategy(b *testing.B) {
	parts := benchParts(dist.Uniform, benchProcs, benchN)
	for _, m := range []core.MergeStrategy{core.MergeBalanced, core.MergeKWay} {
		b.Run(m.String(), func(b *testing.B) {
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				sortOnce(b, parts, core.Options{Merge: m})
			}
		})
	}
}

// BenchmarkAblationAsyncExchange compares exchange schedules.
func BenchmarkAblationAsyncExchange(b *testing.B) {
	parts := benchParts(dist.Uniform, benchProcs, benchN)
	for _, sync := range []bool{false, true} {
		name := "async"
		if sync {
			name = "sync"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				sortOnce(b, parts, core.Options{SyncExchange: sync})
			}
		})
	}
}

// BenchmarkAblationTransport compares chan and TCP transports.
func BenchmarkAblationTransport(b *testing.B) {
	parts := benchParts(dist.Uniform, 4, benchN)
	for _, tr := range []string{TransportChan, TransportTCP} {
		b.Run(tr, func(b *testing.B) {
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				sortOnce(b, parts, core.Options{Transport: tr})
			}
		})
	}
}

// BenchmarkBaselineSorters times the related-work baselines (§II).
func BenchmarkBaselineSorters(b *testing.B) {
	parts := benchParts(dist.Uniform, benchProcs, benchN)
	// Radix buckets key on the top bits; spread the 2^20 domain up.
	spread := make([][]uint64, len(parts))
	for i, part := range parts {
		spread[i] = make([]uint64, len(part))
		for j, k := range part {
			spread[i][j] = k << 43
		}
	}
	b.Run("bitonic", func(b *testing.B) {
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			if _, _, err := baselines.BitonicSort(spread, comm.U64Codec{}, TransportChan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("radix", func(b *testing.B) {
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			if _, _, err := baselines.RadixSort(spread, TransportChan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLocalSortPrimitives compares the local sorting building blocks.
func BenchmarkLocalSortPrimitives(b *testing.B) {
	keys := dist.Gen{Kind: dist.Uniform, Seed: 5}.Keys(benchN)
	b.Run("facade-one-shot", func(b *testing.B) {
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			if _, _, err := Sort(keys, Options{Procs: benchProcs, WorkersPerProc: benchWkrs}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLocalSortPath compares the step-1 paths end to end (ISSUE 3):
// the paper's comparison sort against the radix fast path over normalized
// keys, per distribution kind on a persistent cluster.
func BenchmarkLocalSortPath(b *testing.B) {
	for _, kind := range []dist.Kind{dist.Uniform, dist.RightSkewed, dist.FewDistinct} {
		parts := benchParts(kind, benchProcs, benchN)
		for _, mode := range []core.LocalSortMode{core.LocalSortComparison, core.LocalSortRadix} {
			b.Run(fmt.Sprintf("%s/%s", kind, mode), func(b *testing.B) {
				eng, err := core.NewEngine[uint64](
					core.Options{Procs: benchProcs, WorkersPerProc: benchWkrs, LocalSort: mode}, comm.U64Codec{})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				b.SetBytes(benchN * 8)
				b.ResetTimer()
				var last *core.Report
				for i := 0; i < b.N; i++ {
					res, err := eng.Sort(parts)
					if err != nil {
						b.Fatal(err)
					}
					last = &res.Report
				}
				b.ReportMetric(float64(last.Steps[core.StepLocalSort].Microseconds())/1000, "local-sort-ms")
			})
		}
	}
}

// BenchmarkSortManyAlloc measures allocation churn of a pipelined
// SortMany batch with the scratch-buffer pools on versus the unpooled
// baseline (ISSUE 3): pooling recycles the entry buffers, merge scratch
// and exchange assemblies across datasets, cutting B/op.
func BenchmarkSortManyAlloc(b *testing.B) {
	const allocN = 100_000
	datasets := make([][][]uint64, len(dist.Kinds))
	for d, kind := range dist.Kinds {
		datasets[d] = benchParts(kind, benchProcs, allocN)
	}
	totalKeys := int64(len(datasets)) * allocN
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "unpooled"
		}
		b.Run(name, func(b *testing.B) {
			eng, err := core.NewEngine[uint64](
				core.Options{Procs: benchProcs, WorkersPerProc: benchWkrs, DisablePooling: !pooled},
				comm.U64Codec{})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			// Warm the pools outside the measured window, as a steady-state
			// service would be.
			if _, err := eng.SortMany(datasets...); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(totalKeys * 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SortMany(datasets...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStringSort times the variable-width string pipeline: the
// length-prefixed codec, the 8-byte-prefix radix norm, and (in the
// "prefixed" variants) the comparison fallback over prefix-equal runs.
func BenchmarkStringSort(b *testing.B) {
	for _, prefix := range []struct{ name, p string }{
		{"short-keys", ""},
		{"prefixed", "a-shared-prefix-way-past-the-norm/"},
	} {
		b.Run(prefix.name, func(b *testing.B) {
			parts := make([][]string, benchProcs)
			bytesPerRun := int64(0)
			for i := range parts {
				parts[i] = dist.Gen{Kind: dist.RightSkewed, Seed: uint64(7919*i + 1), Domain: 64}.
					Strings(benchN/benchProcs, prefix.p)
				for _, k := range parts[i] {
					bytesPerRun += int64(len(k))
				}
			}
			eng, err := core.NewEngine[string](
				core.Options{Procs: benchProcs, WorkersPerProc: benchWkrs}, comm.StringCodec{})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.SetBytes(bytesPerRun)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Sort(parts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && res.Report.LocalSortPath != "radix" {
					b.Fatalf("string sort took the %s path", res.Report.LocalSortPath)
				}
			}
		})
	}
}

// BenchmarkRecordSort times key+payload sorts across payload sizes: 0 B
// (the record codec's overhead floor), 16 B (a compact row) and 256 B
// (a wide row dominating the exchange volume).
func BenchmarkRecordSort(b *testing.B) {
	for _, payload := range []int{0, 16, 256} {
		b.Run(fmt.Sprintf("payload-%dB", payload), func(b *testing.B) {
			per := benchN / benchProcs
			recs := make([][]comm.Record[uint64], benchProcs)
			for i := range recs {
				keys := dist.Gen{Kind: dist.Uniform, Seed: uint64(7919*i + 1)}.Keys(per)
				pays := dist.Gen{Seed: uint64(i + 1)}.Payloads(per, payload)
				part := make([]comm.Record[uint64], per)
				for j := range part {
					part[j] = comm.Record[uint64]{Key: keys[j], Payload: pays[j]}
				}
				recs[i] = part
			}
			eng, err := core.NewEngine[uint64](
				core.Options{Procs: benchProcs, WorkersPerProc: benchWkrs},
				comm.NewRecordCodec[uint64](comm.U64Codec{}))
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.SetBytes(int64(benchN) * int64(8+payload))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SortRecords(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
